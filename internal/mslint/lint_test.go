// Tests for the annotation-contract linter: one deliberately broken
// program per diagnostic class, asserting the exact code, severity, and
// source line of every finding, plus a certification pass over the
// bundled workload suite.
//
// The test sources all start with a newline so that the first label sits
// on line 2 and the first instruction on line 3; the expected line
// numbers below are literal line numbers within the raw string.
package mslint_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/isa"
	"multiscalar/internal/mslint"
	"multiscalar/internal/workloads"
)

// lintSrc assembles a multiscalar source with the built-in lint gate
// disabled (the test wants the report, not the rejection) and lints it.
func lintSrc(t *testing.T, src string) *mslint.Report {
	t.Helper()
	res, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return mslint.Lint(res.Prog, res.Lines)
}

// want is one expected finding. Reg is checked only when non-empty.
type want struct {
	code string
	sev  mslint.Severity
	line int
	reg  string
}

func checkReport(t *testing.T, rep *mslint.Report, wants []want) {
	t.Helper()
	key := func(code string, line int) string { return fmt.Sprintf("%03d/%s", line, code) }
	var got, exp []string
	for _, d := range rep.Diags {
		got = append(got, key(d.Code, d.Line))
	}
	for _, w := range wants {
		exp = append(exp, key(w.code, w.line))
	}
	sort.Strings(got)
	sort.Strings(exp)
	if fmt.Sprint(got) != fmt.Sprint(exp) {
		t.Fatalf("findings mismatch\n got: %v\nwant: %v\nreport:\n%s", got, exp, rep)
	}
	for _, w := range wants {
		found := false
		for _, d := range rep.Diags {
			if d.Code == w.code && d.Line == w.line {
				found = true
				if d.Severity != w.sev {
					t.Errorf("%s line %d: severity %s, want %s", w.code, w.line, d.Severity, w.sev)
				}
				if w.reg != "" && d.Reg != w.reg {
					t.Errorf("%s line %d: reg %q, want %q", w.code, w.line, d.Reg, w.reg)
				}
			}
		}
		if !found {
			t.Errorf("missing %s at line %d\nreport:\n%s", w.code, w.line, rep)
		}
	}
}

func TestDiagnostics(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		mutate func(p *isa.Program) // optional descriptor surgery before linting
		wants  []want
	}{
		{
			name: "clean",
			src: `
main:
	li $s0, 3 !f
	j next !s
next:
	addi $s0, $s0, 0
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0
.task next
`,
			wants: nil,
		},
		{
			// $s1 is written by main and read by loop before any write,
			// but main's create mask omits it: the successor would consume
			// a stale pass-through value. Anchored at the first write.
			name: "MS001 create missing",
			src: `
main:
	li $s0, 1 !f
	li $s1, 0
	j loop !s
loop:
	addi $s1, $s1, 1 !f
	addi $s0, $s0, -1 !f
	bnez $s0, loop !s
done:
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=loop create=$s0
.task loop targets=loop,done create=$s0,$s1
.task done
`,
			wants: []want{
				{mslint.CodeCreateMissing, mslint.SevError, 4, "$s1"},
			},
		},
		{
			// $s3 is in the create mask but dead at the only successor;
			// it also rides the completion flush (never forwarded), so the
			// coverage check fires alongside.
			name: "MS002 dead create register",
			src: `
main:
	li $s0, 1 !f
	j next !s
next:
	addi $s0, $s0, 0
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0,$s3
.task next
`,
			wants: []want{
				{mslint.CodeCreateDead, mslint.SevWarning, 3, "$s3"},
				{mslint.CodeFlushOnly, mslint.SevWarning, 4, "$s3"},
			},
		},
		{
			// $s0 is in the create mask and written, but the write carries
			// no forward bit: successors stall until the completion flush.
			// Anchored at the exit the uncovered path reaches.
			name: "MS003 flush-only forward",
			src: `
main:
	li $s0, 5
	j next !s
next:
	addi $s0, $s0, 0
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0
.task next
`,
			wants: []want{
				{mslint.CodeFlushOnly, mslint.SevWarning, 4, "$s0"},
			},
		},
		{
			// The forward bit sits on the first of two writes of $s0: the
			// ring would transmit the stale first value.
			name: "MS004 stale forward bit",
			src: `
main:
	li $s0, 1 !f
	li $s0, 2
	j next !s
next:
	addi $s0, $s0, 0
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0
.task next
`,
			wants: []want{
				{mslint.CodeStaleForward, mslint.SevError, 3, "$s0"},
			},
		},
		{
			// The forward bit on $t0 names a register outside the create
			// mask: no successor holds a reservation for it.
			name: "MS005 foreign forward bit",
			src: `
main:
	li $s0, 1 !f
	li $t0, 7 !f
	j next !s
next:
	addi $s0, $s0, 0
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0
.task next
`,
			wants: []want{
				{mslint.CodeForeignForward, mslint.SevWarning, 4, "$t0"},
			},
		},
		{
			// The stop-tagged jump exits to next, which the descriptor does
			// not declare: the sequencer could never have predicted it.
			name: "MS006 undeclared exit",
			src: `
main:
	li $t0, 1
	j next !s
next:
	li $v0, 10
	li $a0, 0
	syscall
.task main
.task next
`,
			wants: []want{
				{mslint.CodeUndeclaredExit, mslint.SevError, 4, ""},
			},
		},
		{
			// Target other is declared but no statically discovered exit
			// reaches it. Anchored at the task entry.
			name: "MS007 unreachable target",
			src: `
main:
	li $t0, 1
	j next !s
next:
	li $v0, 10
	li $a0, 0
	syscall
other:
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next,other
.task next
.task other
`,
			wants: []want{
				{mslint.CodeUnreachableTarget, mslint.SevWarning, 3, ""},
			},
		},
		{
			// The jump into task next carries no stop bit, so the unit
			// would keep fetching next's instructions inside main's task.
			// With the edge rejected, main has no exit and its declared
			// target is reported unreachable as well.
			name: "MS008 missing stop bit",
			src: `
main:
	li $t0, 1
	j next
next:
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next
.task next
`,
			wants: []want{
				{mslint.CodeMissingStop, mslint.SevError, 4, ""},
				{mslint.CodeUnreachableTarget, mslint.SevWarning, 3, ""},
			},
		},
		{
			// fn is both a suppressed callee of main (jal without stop) and
			// its own task: its body executes twice per traversal. The stop
			// bit on its return is also flagged from the caller's view.
			name: "MS009 callee is also a task",
			src: `
main:
	jal fn
	j done !s
fn:
	jr $ra !s
done:
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=done
.task fn targets=ret
.task done
`,
			wants: []want{
				{mslint.CodeTaskOverlap, mslint.SevWarning, 3, ""},
				{mslint.CodeStopInCallee, mslint.SevWarning, 6, ""},
			},
		},
		{
			// Descriptor surgery pushes task a's target list past the
			// hardware limit (duplicates, so every exit stays declared).
			name: "MS010 too many targets",
			src: `
main:
	li $t0, 1
	j a !s
a:
	li $t1, 2
	j b !s
b:
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=a
.task a targets=b
.task b
`,
			mutate: func(p *isa.Program) {
				ta := p.Tasks[p.Symbols["a"]]
				for len(ta.Targets) <= isa.MaxTaskTargets {
					ta.Targets = append(ta.Targets, ta.Targets[0])
				}
			},
			wants: []want{
				{mslint.CodeTooManyTargets, mslint.SevError, 6, ""},
			},
		},
		{
			// The task ends in a call but the descriptor carries no pushra,
			// so the return address stack cannot predict the continuation.
			name: "MS011 call exit without pushra",
			src: `
main:
	jal fn !s
fn:
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=fn
.task fn
`,
			wants: []want{
				{mslint.CodeCallPushRA, mslint.SevWarning, 3, ""},
			},
		},
		{
			// Target other resolves to a label but no task descriptor:
			// the sequencer has nothing to dispatch there. The target is
			// also unreachable by any exit.
			name: "MS012 target without descriptor",
			src: `
main:
	li $t0, 1
	j next !s
next:
	li $v0, 10
	li $a0, 0
	syscall
other:
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next,other
.task next
`,
			wants: []want{
				{mslint.CodeBadTaskRef, mslint.SevError, 3, ""},
				{mslint.CodeUnreachableTarget, mslint.SevWarning, 3, ""},
			},
		},
		{
			// fn is pulled into main's task (call without stop), so the
			// stop bit on its return would end the task mid-call for every
			// caller.
			name: "MS013 stop inside callee",
			src: `
main:
	jal fn
	j done !s
fn:
	jr $ra !s
done:
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=done
.task done
`,
			wants: []want{
				{mslint.CodeStopInCallee, mslint.SevWarning, 6, ""},
			},
		},
		{
			// An indirect call inside the region defeats static exit and
			// effect analysis.
			name: "MS014 indirect call",
			src: `
main:
	la $t0, fn
	jalr $t0
	j done !s
fn:
	jr $ra !s
done:
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=done
.task done
`,
			wants: []want{
				{mslint.CodeIndirect, mslint.SevWarning, 4, ""},
			},
		},
		{
			// The program has task descriptors but none at the entry: the
			// sequencer cannot dispatch the first task.
			name: "MS015 entry is not a task",
			src: `
main:
	li $t0, 1
	j t !s
t:
	li $v0, 10
	li $a0, 0
	syscall
.task t
`,
			wants: []want{
				{mslint.CodeEntryNotTask, mslint.SevError, 3, ""},
			},
		},
		{
			// The FP compare happens in main but the conditional branch
			// consuming the flag sits in task t: the flag is task-local and
			// does not cross the boundary.
			name: "MS016 FP flag crosses boundary",
			src: `
main:
	c.lt.d $f0, $f2
	j t !s
t:
	bc1t done !st
	j done !s
done:
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=t
.task t targets=done
.task done
`,
			wants: []want{
				{mslint.CodeFCCBoundary, mslint.SevWarning, 6, ""},
			},
		},
		{
			// $s1 is in main's create mask and next reads it, but main
			// never writes it: successors wait to receive a pass-through
			// value. The never-sent register also rides the completion
			// flush, so the coverage check fires alongside (like MS002).
			name: "MS017 over-broad create mask",
			src: `
main:
	li $s0, 1 !f
	j next !s
next:
	add $a0, $s0, $s1
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0,$s1
.task next
`,
			wants: []want{
				{mslint.CodeOverBroadCreate, mslint.SevWarning, 3, "$s1"},
				{mslint.CodeFlushOnly, mslint.SevWarning, 4, "$s1"},
			},
		},
		{
			// $s0 is forwarded at its write and released again on the same
			// path: each create-mask register rides the ring once per task
			// execution, so the release never transmits.
			name: "MS018 dead forward",
			src: `
main:
	li $s0, 1 !f
	.msonly release $s0
	j next !s
next:
	add $a0, $s0, $zero
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0
.task next
`,
			wants: []want{
				{mslint.CodeDeadForward, mslint.SevWarning, 4, "$s0"},
			},
		},
		{
			// $s0 is final after line 3 but its release waits behind an
			// unrelated instruction in the same block: successors stall a
			// cycle longer than the dataflow requires.
			name: "MS019 late release",
			src: `
main:
	li $s0, 1
	li $t0, 5
	.msonly release $s0
	j next !s
next:
	add $a0, $s0, $zero
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0
.task next
`,
			wants: []want{
				{mslint.CodeLateForward, mslint.SevWarning, 5, "$s0"},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := asm.AssembleOpts(tc.src, asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			if tc.mutate != nil {
				tc.mutate(res.Prog)
			}
			checkReport(t, mslint.Lint(res.Prog, res.Lines), tc.wants)
		})
	}
}

// TestNoTasksLintsClean checks the scalar escape hatch: a program without
// task descriptors has no contract to verify.
func TestNoTasksLintsClean(t *testing.T) {
	src := `
main:
	li $v0, 10
	li $a0, 0
	syscall
`
	rep := lintSrc(t, src)
	if len(rep.Diags) != 0 {
		t.Fatalf("program without tasks should lint clean, got:\n%s", rep)
	}
}

// TestReportAPI exercises the report surface the tools depend on:
// error/warning split, Err folding, JSON shape.
func TestReportAPI(t *testing.T) {
	src := `
main:
	li $s0, 1 !f
	li $s0, 2
	li $t1, 3 !f
	j next !s
next:
	addi $s0, $s0, 0
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0
.task next
`
	rep := lintSrc(t, src)
	if len(rep.Errors()) != 1 || len(rep.Warnings()) != 1 {
		t.Fatalf("want 1 error + 1 warning, got:\n%s", rep)
	}
	if !rep.HasErrors() {
		t.Fatal("HasErrors = false with an error present")
	}
	err := rep.Err()
	if err == nil {
		t.Fatal("Err() = nil with an error present")
	}
	out, jerr := rep.JSON()
	if jerr != nil {
		t.Fatalf("JSON: %v", jerr)
	}
	for _, needle := range []string{`"code"`, `"MS004"`, `"severity"`, `"error"`, `"line"`} {
		if !strings.Contains(string(out), needle) {
			t.Errorf("JSON output missing %s:\n%s", needle, out)
		}
	}
}

// TestWorkloadsLintClean certifies the bundled benchmark suite against
// the contract: every workload (including the extras) must assemble and
// lint with zero errors and zero warnings at its test scale.
func TestWorkloadsLintClean(t *testing.T) {
	for _, w := range workloads.AllWithExtras() {
		t.Run(w.Name, func(t *testing.T) {
			res, err := asm.AssembleOpts(w.Source(w.TestScale),
				asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			rep := mslint.Lint(res.Prog, res.Lines)
			if len(rep.Diags) != 0 {
				t.Fatalf("workload %s does not lint clean:\n%s", w.Name, rep)
			}
		})
	}
}

// TestLintWithoutLines checks that diagnostics degrade gracefully when
// no line table is available (loaded .msb containers): findings anchor
// to addresses and render with the address instead of a line.
func TestLintWithoutLines(t *testing.T) {
	src := `
main:
	li $s0, 1 !f
	li $s0, 2
	j next !s
next:
	addi $s0, $s0, 0
	li $v0, 10
	li $a0, 0
	syscall
.task main targets=next create=$s0
.task next
`
	res, err := asm.AssembleOpts(src, asm.Options{Mode: asm.ModeMultiscalar, NoLint: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	rep := mslint.Lint(res.Prog, nil)
	if len(rep.Errors()) != 1 {
		t.Fatalf("want 1 error, got:\n%s", rep)
	}
	d := rep.Errors()[0]
	if d.Line != 0 {
		t.Errorf("line = %d without a line table, want 0", d.Line)
	}
	if d.Addr == 0 {
		t.Error("diagnostic carries no address")
	}
	if got := d.String(); !strings.Contains(got, "0x") {
		t.Errorf("String() = %q, want an address prefix", got)
	}
}
