package workloads

import "strings"

// sc is the spreadsheet-evaluation kernel (paper §5.3: RealEvalAll
// restructured "to build a work list of the cells to be evaluated and to
// call RealEvalOne for each of the cells on the work list", with
// RealEvalOne suppressed into the task; "since RealEvalOne executes for
// hundreds of cycles, the load imbalance between the work at each cell is
// enormous"). A task is one work-list entry; eval work varies widely per
// cell, and cells whose formula references the previous cell's result
// introduce occasional memory-order violations.
func init() {
	register(&Workload{
		Name:         "sc",
		Description:  "spreadsheet cell evaluation over a work list (sc kernel)",
		DefaultScale: 220, // work-list entries
		TestScale:    30,
		Source:       scSource,
		Paper: PaperRow{
			ScalarM: 409.06, MultiM: 460.79, PctIncrease: 12.6,
			InOrder1: PaperPerf{ScalarIPC: 0.75, Speedup4: 1.36, Speedup8: 1.68, Pred4: 90.5, Pred8: 90.0},
			InOrder2: PaperPerf{ScalarIPC: 0.94, Speedup4: 1.28, Speedup8: 1.56, Pred4: 90.0, Pred8: 89.5},
			OOO1:     PaperPerf{ScalarIPC: 0.80, Speedup4: 1.42, Speedup8: 1.75, Pred4: 90.5, Pred8: 90.0},
			OOO2:     PaperPerf{ScalarIPC: 1.10, Speedup4: 1.24, Speedup8: 1.50, Pred4: 90.2, Pred8: 90.2},
		},
	})
}

// Cell layout: type(0=const sum,1=references previous cell), opA, opB,
// iters, result — 5 words.
const cellWords = 5

func scSource(scale int) string {
	ncells := scale
	r := newRNG(0x5c5c)
	var words []int
	for c := 0; c < ncells; c++ {
		typ := 0
		if c > 0 && r.intn(2) == 0 {
			typ = 1 // formula references the previous cell's result
		}
		words = append(words, typ, 3+r.intn(50), 1+r.intn(9), 1+r.intn(30), 0)
	}
	var sb strings.Builder
	sb.WriteString("\t.data\ncells:\n")
	sb.WriteString(wordLines(words))
	sb.WriteString(`
	.text
main:
	li   $s0, 0 !f           ; work-list index
	li   $s1, 0 !f           ; grand total
`)
	sb.WriteString("\tli   $s5, " + itoa(ncells) + " !f\n")
	sb.WriteString(`	j    CELL !s

CELL:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5
	; cell base = index * 20
	sll  $t0, $t9, 2
	add  $t0, $t0, $t9
	sll  $t0, $t0, 2
	move $a0, $t0
	jal  evalone             ; suppressed call: runs inside this task
	add  $s1, $s1, $v0 !f
	.msonly bnez $at, CELL !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, CELL
DONE:
	move $a0, $s1
` + printInt + exitSeq + `

	; evalone(cellOffset in $a0) -> $v0: variable-length formula
evalone:
	lw   $t1, cells($a0)     ; type
	lw   $t2, cells+4($a0)   ; opA
	lw   $t3, cells+8($a0)   ; opB
	lw   $t4, cells+12($a0)  ; iters
	beqz $t1, EVCONST
	; type 1: start from the previous cell's result (may still be
	; speculative in a predecessor task -> possible squash)
	lw   $t5, cells-4($a0)
	j    EVLOOP
EVCONST:
	li   $t5, 0
EVLOOP:
	mul  $t6, $t2, $t3
	add  $t5, $t5, $t6
	addi $t2, $t2, 1
	addi $t4, $t4, -1
	bnez $t4, EVLOOP
	sw   $t5, cells+16($a0)  ; result
	move $v0, $t5
	jr   $ra
	.task main targets=CELL create=$s0,$s1,$s5
	.task CELL targets=CELL,DONE create=$s0,$s1
	.task DONE
`)
	return sb.String()
}
