// mslitmus generates memory-ordering litmus tests, checks the
// speculative machines against the functional oracle across a config
// matrix, and stress-fuzzes the ARB's capacity paths. See
// docs/litmus.md.
//
// Usage:
//
//	mslitmus -list                         catalogue the shape families
//	mslitmus -dump mp/pad8/fill4           print one generated program
//	mslitmus -corpus [-quick]              run the curated differential corpus
//	mslitmus -stress 500 -seed 1           run seeded random ARB stress programs
//	mslitmus -replay artifact.json         re-run a dumped mismatch artifact
//
// Every failure report prints the seed that reproduces it; -ci rejects
// an unseeded stress run and makes any mismatch (or missing -seed) a
// non-zero exit. -artifacts DIR dumps each mismatch as a self-contained
// JSON repro artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"multiscalar/internal/litmus"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list the shape catalogue and curated corpus")
		dump      = flag.String("dump", "", "print the generated source and outcomes for a corpus program `name`")
		corpus    = flag.Bool("corpus", false, "run the curated corpus across the differential config matrix")
		quick     = flag.Bool("quick", false, "with -corpus: the reduced matrix (units x policies x noskip, capacity-1 banks)")
		stressN   = flag.Int("stress", 0, "run `n` seeded random stress programs across tiny-bank configs")
		seed      = flag.Int64("seed", 0, "generation seed for -stress (and recorded in artifacts)")
		units     = flag.String("units", "", "with -stress: comma-separated unit counts (default 4,8)")
		entries   = flag.String("entries", "", "with -stress: comma-separated ARB entries per bank (default 1,2)")
		replay    = flag.String("replay", "", "replay a mismatch artifact `file`")
		artifacts = flag.String("artifacts", "", "write mismatch artifacts into `dir`")
		ci        = flag.Bool("ci", false, "CI mode: require an explicit -stress seed, exit non-zero on any mismatch")
	)
	flag.Parse()

	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	switch {
	case *list:
		listShapes()
	case *dump != "":
		os.Exit(dumpProgram(*dump))
	case *corpus:
		os.Exit(runCorpus(*quick, *seed, *artifacts))
	case *stressN > 0:
		if !seedSet {
			if *ci {
				fmt.Fprintln(os.Stderr, "mslitmus: -ci requires an explicit -seed (unseeded stress runs are not replayable)")
				os.Exit(2)
			}
			*seed = time.Now().UnixNano()
		}
		os.Exit(runStress(*stressN, *seed, *units, *entries, *artifacts))
	case *replay != "":
		os.Exit(replayArtifact(*replay))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func listShapes() {
	fmt.Println("shape families:")
	for _, name := range litmus.Shapes() {
		fmt.Printf("  %-9s %s\n", name, litmus.ShapeDoc(name))
	}
	fmt.Println("\ncurated corpus (use with -dump):")
	progs, err := litmus.Corpus()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mslitmus:", err)
		os.Exit(2)
	}
	for _, p := range progs {
		fmt.Printf("  %-18s oracle=%q\n", p.Name, p.Oracle.Out)
	}
}

func dumpProgram(name string) int {
	progs, err := litmus.Corpus()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mslitmus:", err)
		return 2
	}
	p := litmus.Find(progs, name)
	if p == nil && strings.HasPrefix(name, "rand/") {
		// rand programs are addressed by seed: rand/seed<N>.
		if s, err := strconv.ParseInt(strings.TrimPrefix(name, "rand/seed"), 10, 64); err == nil {
			if p, err = litmus.Random(s); err != nil {
				fmt.Fprintln(os.Stderr, "mslitmus:", err)
				return 2
			}
		}
	}
	if p == nil {
		fmt.Fprintf(os.Stderr, "mslitmus: no corpus program %q (try -list)\n", name)
		return 2
	}
	fmt.Print(p.Source)
	fmt.Printf("\n; oracle output: %q (%d instructions)\n", p.Oracle.Out, p.Oracle.ICount)
	for _, out := range litmus.SortedForbidden(p.Forbidden) {
		fmt.Printf("; forbidden %-8q %s\n", out, p.Forbidden[out])
	}
	return 0
}

func runCorpus(quick bool, seed int64, artifactDir string) int {
	progs, err := litmus.Corpus()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mslitmus:", err)
		return 2
	}
	matrix := litmus.Matrix(quick)
	start := time.Now()
	mms := litmus.RunDiff(progs, matrix, seed)
	fmt.Printf("corpus: %d programs x %d configs = %d runs in %v, %d mismatches\n",
		len(progs), len(matrix), len(progs)*len(matrix), time.Since(start).Round(time.Millisecond), len(mms))
	return report(mms, seed, artifactDir)
}

func runStress(n int, seed int64, unitsArg, entriesArg, artifactDir string) int {
	opts := litmus.StressOpts{Seed: seed, Programs: n}
	var err error
	if opts.Units, err = parseInts(unitsArg); err != nil {
		fmt.Fprintln(os.Stderr, "mslitmus: -units:", err)
		return 2
	}
	if opts.Entries, err = parseInts(entriesArg); err != nil {
		fmt.Fprintln(os.Stderr, "mslitmus: -entries:", err)
		return 2
	}
	rep, err := litmus.Stress(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mslitmus: stress (seed %d): %v\n", seed, err)
		return 2
	}
	fmt.Print(rep)
	return report(rep.Mismatches, seed, artifactDir)
}

// report prints mismatches (each naming the seed that replays it),
// writes artifacts when requested, and picks the exit code.
func report(mms []*litmus.Mismatch, seed int64, artifactDir string) int {
	if len(mms) == 0 {
		fmt.Println("PASS")
		return 0
	}
	for i, mm := range mms {
		fmt.Fprintf(os.Stderr, "MISMATCH (seed %d): %s\n", seed, mm)
		if artifactDir == "" {
			continue
		}
		if err := os.MkdirAll(artifactDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mslitmus:", err)
			continue
		}
		data, err := mm.Artifact.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mslitmus: encoding artifact:", err)
			continue
		}
		path := filepath.Join(artifactDir, fmt.Sprintf("mismatch-%03d-%s.json", i, sanitize(mm.Program.Name)))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mslitmus:", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "  artifact: %s (replay with: mslitmus -replay %s)\n", path, path)
	}
	return 1
}

func replayArtifact(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mslitmus:", err)
		return 2
	}
	a, err := litmus.DecodeArtifact(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mslitmus:", err)
		return 2
	}
	fmt.Printf("replaying %s @ %s (seed %d)\n", a.Name, a.Entry, a.Seed)
	fmt.Printf("  recorded: want=%q got=%q err=%q diagnosis=%q\n", a.Want, a.Got, a.Error, a.Diagnosis)
	r, err := a.Replay()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mslitmus:", err)
		return 2
	}
	if r.Err != "" {
		fmt.Printf("  this run: error %q\n", r.Err)
	} else {
		fmt.Printf("  this run: got=%q committed=%d\n", r.Got, r.Committed)
	}
	if r.Reproduced {
		fmt.Println("REPRODUCED")
		return 1
	}
	fmt.Println("did not reproduce (run now matches the recorded oracle)")
	return 0
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}
