package mslint_test

import (
	"strings"
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/interp"
	"multiscalar/internal/mslint"
)

// FuzzLint: the linter must never panic on any program the assembler
// accepts, its report invariants must hold, and — the property that makes
// it a gate worth trusting — any multiscalar program it passes with zero
// findings must execute equivalently on the functional oracle and the
// timing simulator. Run with `go test -fuzz FuzzLint ./internal/mslint`.
func FuzzLint(f *testing.F) {
	// The assembler fuzzer's seeds: arbitrary-but-plausible sources.
	f.Add("main:\n\tli $t0, 1\n\tsyscall\n")
	f.Add("main:\n\tadd $t0, $t1, $t2 !f !s\n.task main targets=main create=$t0\n")
	f.Add(".data\nx:\t.word 1, x+4\n.text\nmain:\n\tlw $t0, x($gp)\n")
	f.Add("main:\n\tblt $t0, $t1, main\n\trelease $t0, $f3\n")
	f.Add(".msonly move $t9, $s0\n.sconly nop\nmain:\n\tj main !st\n")
	f.Add("main:\n\tli $t0, '\\n'\n\t.asciiz \"a\\\"b\"\n")
	// A clean two-task program (the equivalence path).
	f.Add("main:\n\tli $s0, 3 !f\n\tj next !s\nnext:\n\tadd $a0, $s0, $zero\n\tli $v0, 1\n\tsyscall\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n.task main targets=next create=$s0\n.task next\n")
	// One seed per diagnostic family, so mutation starts near the
	// interesting boundaries of the contract.
	f.Add("main:\n\tli $s0, 1 !f\n\tli $s0, 2\n\tj next !s\nnext:\n\tadd $t0, $s0, $zero\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n.task main targets=next create=$s0\n.task next\n")
	f.Add("main:\n\tli $t0, 1\n\tj next !s\nnext:\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n.task main\n.task next\n")
	f.Add("main:\n\tjal fn\n\tj done !s\nfn:\n\tjr $ra !s\ndone:\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n.task main targets=done\n.task done\n")
	f.Add("main:\n\tli $t0, 1\n\tj t !s\nt:\n\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n.task t\n")

	f.Fuzz(func(t *testing.T, src string) {
		for _, mode := range []asm.Mode{asm.ModeScalar, asm.ModeMultiscalar} {
			res, err := asm.AssembleOpts(src, asm.Options{Mode: mode, NoLint: true})
			if err != nil || res == nil {
				continue
			}
			// Lint must not panic, with or without a line table.
			rep := mslint.Lint(res.Prog, res.Lines)
			mslint.Lint(res.Prog, nil)

			if len(rep.Errors())+len(rep.Warnings()) != len(rep.Diags) {
				t.Fatalf("error/warning split loses findings: %d + %d != %d",
					len(rep.Errors()), len(rep.Warnings()), len(rep.Diags))
			}
			if (rep.Err() != nil) != rep.HasErrors() {
				t.Fatalf("Err() = %v but HasErrors() = %v", rep.Err(), rep.HasErrors())
			}
			if _, jerr := rep.JSON(); jerr != nil {
				t.Fatalf("report does not marshal: %v", jerr)
			}

			// The gate property: a multiscalar program with ZERO findings
			// (warnings included — an indirect-call warning, for example,
			// marks the program as unanalyzable) must run equivalently on
			// the oracle and the timing simulator. Bounded on both sides;
			// programs that run away are skipped, not failed.
			if mode != asm.ModeMultiscalar || len(rep.Diags) != 0 ||
				len(res.Prog.Tasks) == 0 || len(res.Prog.Text) > 4096 {
				continue
			}
			oracleEnv := interp.NewSysEnv()
			om := interp.NewMachine(res.Prog, oracleEnv)
			if err := om.Run(100_000); err != nil {
				continue // does not terminate cleanly; nothing to compare
			}
			cfg := core.DefaultConfig(4, 1, false)
			cfg.MaxCycles = 2_000_000
			msEnv := interp.NewSysEnv()
			m, err := core.NewMultiscalar(res.Prog, msEnv, cfg)
			if err != nil {
				t.Fatalf("lint-clean program rejected by the simulator: %v\nsource:\n%s", err, src)
			}
			msRes, err := m.Run()
			if err != nil {
				if strings.Contains(err.Error(), "exceeded") {
					continue // hit the cycle bound, not a contract failure
				}
				t.Fatalf("lint-clean program fails at runtime: %v\nsource:\n%s", err, src)
			}
			if msRes.Out != oracleEnv.Out.String() {
				t.Fatalf("lint-clean program diverges from the oracle: %q vs %q\nsource:\n%s",
					msRes.Out, oracleEnv.Out.String(), src)
			}
			if msRes.Committed != om.ICount {
				t.Fatalf("lint-clean program committed %d instructions, oracle executed %d\nsource:\n%s",
					msRes.Committed, om.ICount, src)
			}
		}
	})
}
