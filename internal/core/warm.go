package core

import (
	"fmt"

	"multiscalar/internal/interp"
	"multiscalar/internal/isa"
	"multiscalar/internal/mem"
	"multiscalar/internal/predict"
	"multiscalar/internal/snapshot"
)

// Warm-state capture and injection for sampled simulation
// (internal/sample, docs/perf.md "Sampled simulation").
//
// A WarmState is what functional-warm fast-forward knows at an
// instruction boundary: the architectural state (PC, registers, FCC,
// memory, system environment) plus the warmed microarchitectural
// structures whose contents accumulate over the whole run — cache tag
// arrays, branch-predictor tables, and for the multiscalar machine the
// task predictor, sequencer return-address stack and task-descriptor
// cache. Everything else in a timing machine (pipelines, MSHRs, the
// ARB, register-forwarding state) is short-lived and is left cold; the
// detailed window's warm-up prefix absorbs that transient.
//
// Injection loads a WarmState into a freshly constructed machine and
// points it at the capture PC, so a detailed measurement window starts
// from state a full detailed run would plausibly have at that point.
// For the multiscalar machine the capture PC must be a task boundary
// (the sequencer can only start tasks); the sample engine captures at
// boundaries only.

// WarmState accumulates warm structures during functional fast-forward
// and serializes them at capture points. The warm caches are built by
// NewWarmState with the target Config's geometry; the architectural
// fields are set by the engine before each Encode.
type WarmState struct {
	// Architectural state at the capture point.
	PC     uint32
	FCC    bool
	ICount uint64 // dynamic instructions retired before this point
	Regs   [isa.NumRegs]interp.Value
	Env    *interp.SysEnv
	Mem    *mem.Memory

	// Warm microarchitectural structures (tag/table contents only; they
	// never see timing, so they carry no MSHRs or occupancy).
	ICache *mem.Cache
	DCache *mem.BankedDCache
	Branch *predict.BranchPredictor

	// Multiscalar-only sequencer structures.
	Multi     bool
	TaskPred  predict.TaskPredictor
	RAS       predict.RAS
	DescCache *mem.Cache
}

// NewWarmState allocates warm structures matching the machines a
// Config would build (the geometry rules mirror NewScalar and
// NewMultiscalar; the backing bus is a throwaway — warm structures are
// only ever Touched, never Accessed). The caller sets Env and Mem to
// the functional machine's and the per-capture fields before Encode.
func NewWarmState(cfg Config, multi bool) *WarmState {
	bus := mem.NewBus()
	w := &WarmState{
		Multi:  multi,
		ICache: mem.NewCache("icache", cfg.ICacheBytes, cfg.ICacheBlock, 0, cfg.NumMSHRs, bus),
		Branch: predict.NewBranchPredictor(cfg.BranchEntries),
	}
	if multi {
		w.DCache = mem.NewBankedDCache(cfg.NumBanks(), cfg.DBankBytes, cfg.DBlockBytes, cfg.DCacheHit, cfg.NumMSHRs, bus)
		w.DescCache = mem.NewCache("desccache", cfg.DescCacheEntries*16, 16, 0, 1, bus)
	} else {
		w.DCache = mem.NewBankedDCache(1, cfg.DBankBytes, cfg.DBlockBytes, cfg.DCacheHit, cfg.NumMSHRs, bus)
	}
	return w
}

// Encode serializes the warm state as a KindWarm snapshot (header
// cycle = ICount).
func (w *WarmState) Encode() []byte {
	e := snapshot.NewEncoder(snapshot.KindWarm, w.ICount)
	e.Tag("WARM")
	e.Bool(w.Multi)
	e.U32(w.PC)
	e.Bool(w.FCC)
	saveRegs(e, &w.Regs)
	w.Env.SaveState(e)
	w.Mem.SaveState(e)
	w.ICache.SaveState(e)
	w.DCache.SaveState(e)
	w.Branch.SaveState(e)
	if w.Multi {
		w.TaskPred.SaveState(e)
		w.RAS.SaveState(e)
		w.DescCache.SaveState(e)
	}
	return e.Bytes()
}

// decodeWarmHeader consumes the common prefix of a warm snapshot.
func decodeWarmHeader(data []byte, wantMulti bool) (*snapshot.Decoder, uint32, bool, error) {
	d, err := snapshot.NewDecoder(data, snapshot.KindWarm)
	if err != nil {
		return nil, 0, false, err
	}
	d.Tag("WARM")
	multi := d.Bool()
	pc := d.U32()
	fcc := d.Bool()
	if err := d.Err(); err != nil {
		return nil, 0, false, err
	}
	if multi != wantMulti {
		return nil, 0, false, fmt.Errorf("core: warm state for %s machine, want %s",
			machineName(multi), machineName(wantMulti))
	}
	return d, pc, fcc, nil
}

func machineName(multi bool) string {
	if multi {
		return "multiscalar"
	}
	return "scalar"
}

// InjectWarm loads a warm-state snapshot into a freshly constructed
// multiscalar machine: execution will start at the capture PC (which
// must be a task boundary) with the captured architectural state, and
// caches, predictors and the sequencer's history arrive pre-warmed.
// Timing state starts cold at cycle 0. On error the machine must not
// be run.
func (m *Multiscalar) InjectWarm(data []byte) error {
	if m.now != 0 || m.active != 0 || m.finished {
		return fmt.Errorf("core: InjectWarm on a machine that has run")
	}
	d, pc, _, err := decodeWarmHeader(data, true)
	if err != nil {
		return err
	}
	if m.prog.TaskAt(pc) == nil {
		return fmt.Errorf("core: warm-state PC 0x%x is not a task boundary", pc)
	}
	loadRegs(d, &m.archRegs)
	m.env.LoadState(d)
	m.backing.LoadState(d)

	// Warm tables are decoded into throwaway structures and adopted, so
	// the machine's own statistics and in-flight state stay pristine.
	tmp := NewWarmState(m.cfg, true)
	tmp.ICache.LoadState(d)
	tmp.DCache.LoadState(d)
	tmp.Branch.LoadState(d)
	tmp.TaskPred.LoadState(d)
	tmp.RAS.LoadState(d)
	tmp.DescCache.LoadState(d)
	if err := d.Finish(); err != nil {
		return err
	}
	for _, ic := range m.icaches {
		if !ic.AdoptTags(tmp.ICache) {
			return fmt.Errorf("core: warm icache geometry mismatch")
		}
	}
	for i, b := range m.dbanks.Banks {
		if !b.AdoptTags(tmp.DCache.Banks[i]) {
			return fmt.Errorf("core: warm dcache geometry mismatch")
		}
	}
	for _, u := range m.units {
		if !u.BranchPredictor().AdoptTables(tmp.Branch) {
			return fmt.Errorf("core: warm branch-predictor geometry mismatch")
		}
	}
	if !m.descCache.AdoptTags(tmp.DescCache) {
		return fmt.Errorf("core: warm descriptor-cache geometry mismatch")
	}
	m.predictor = tmp.TaskPred
	m.predictor.Predictions, m.predictor.Correct = 0, 0
	m.ras = tmp.RAS

	m.forced = pc
	m.forcedValid = true
	// FCC is not carried across task boundaries by the machine design
	// (units clear it at Start), so the captured FCC is ignored here.
	return nil
}

// InjectWarm loads a warm-state snapshot into a freshly constructed
// scalar machine; see Multiscalar.InjectWarm. The scalar machine can
// resume at any instruction, so the captured FCC is seeded into the
// unit when Run starts it.
func (s *Scalar) InjectWarm(data []byte) error {
	if s.started {
		return fmt.Errorf("core: InjectWarm on a machine that has run")
	}
	d, pc, fcc, err := decodeWarmHeader(data, false)
	if err != nil {
		return err
	}
	loadRegs(d, &s.ext.regs)
	s.env.LoadState(d)
	s.backing.LoadState(d)

	tmp := NewWarmState(s.cfg, false)
	tmp.ICache.LoadState(d)
	tmp.DCache.LoadState(d)
	tmp.Branch.LoadState(d)
	if err := d.Finish(); err != nil {
		return err
	}
	if !s.icache.AdoptTags(tmp.ICache) {
		return fmt.Errorf("core: warm icache geometry mismatch")
	}
	if !s.dcache.AdoptTags(tmp.DCache.Banks[0]) {
		return fmt.Errorf("core: warm dcache geometry mismatch")
	}
	if !s.unit.BranchPredictor().AdoptTables(tmp.Branch) {
		return fmt.Errorf("core: warm branch-predictor geometry mismatch")
	}

	s.startPC = pc
	s.startFCC = fcc
	return nil
}
