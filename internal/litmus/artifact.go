package litmus

import (
	"encoding/json"
	"fmt"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/job"
)

// ArtifactVersion tags the repro-artifact JSON layout.
const ArtifactVersion = 1

// Artifact is a self-contained repro of one differential mismatch:
// everything needed to rebuild and re-run the failing cell without the
// generator — the program source, the canonical machine config, the
// generation seed, the expected and observed outcomes, and the final
// -machine snapshot of the divergent run. encoding/json renders
// Snapshot as base64.
type Artifact struct {
	Version   int             `json:"version"`
	Name      string          `json:"name"`
	Seed      int64           `json:"seed"`
	Source    string          `json:"source"`
	Config    json.RawMessage `json:"config"` // core.Config canonical encoding
	Entry     string          `json:"entry"`  // human-readable matrix cell
	Want      string          `json:"want"`
	WantCount uint64          `json:"want_icount"`
	Got       string          `json:"got,omitempty"`
	Committed uint64          `json:"got_committed,omitempty"`
	Error     string          `json:"error,omitempty"`
	Diagnosis string          `json:"diagnosis,omitempty"`
	Snapshot  []byte          `json:"snapshot,omitempty"`
}

// NewArtifact captures a mismatch as a replayable artifact. The config
// is stored in its canonical encoding so the replay runs byte-for-byte
// the same machine.
func NewArtifact(p *Program, e MatrixEntry, mm *Mismatch, seed int64, snapshot []byte) *Artifact {
	cfg, err := e.Config().MarshalCanonical()
	if err != nil {
		// Matrix configs always encode; a failure here is a bug worth
		// surfacing in the artifact itself rather than dropping it.
		cfg = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return &Artifact{
		Version:   ArtifactVersion,
		Name:      p.Name,
		Seed:      seed,
		Source:    p.Source,
		Config:    cfg,
		Entry:     e.String(),
		Want:      p.Oracle.Out,
		WantCount: p.Oracle.ICount,
		Got:       mm.Got,
		Committed: mm.Committed,
		Error:     mm.Err,
		Diagnosis: mm.Diagnosis,
		Snapshot:  snapshot,
	}
}

// Encode renders the artifact as indented JSON.
func (a *Artifact) Encode() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// DecodeArtifact parses an artifact produced by Encode.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("litmus: decoding artifact: %w", err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("litmus: artifact version %d (want %d)", a.Version, ArtifactVersion)
	}
	return &a, nil
}

// ReplayResult is the outcome of re-running an artifact.
type ReplayResult struct {
	Reproduced bool   // the run still diverges from the recorded oracle
	Got        string // this run's output
	Committed  uint64
	Err        string // this run's error, if it failed outright
}

// Replay rebuilds the artifact's program from source and re-runs it
// under the recorded config, reporting whether the mismatch still
// reproduces.
func (a *Artifact) Replay() (*ReplayResult, error) {
	cfg, err := core.UnmarshalCanonicalConfig(a.Config)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(a.Source, asm.ModeMultiscalar)
	if err != nil {
		return nil, fmt.Errorf("litmus: reassembling artifact source: %w", err)
	}
	spec := &job.Spec{
		Op:      job.OpSimulate,
		Program: prog,
		Machine: job.MachineMultiscalar,
		Config:  cfg,
	}
	out, err := job.Execute(spec, nil)
	if err != nil {
		return &ReplayResult{Reproduced: true, Err: err.Error()}, nil
	}
	r := &ReplayResult{Got: out.Result.Out, Committed: out.Result.Committed}
	r.Reproduced = r.Got != a.Want || r.Committed != a.WantCount
	return r, nil
}
