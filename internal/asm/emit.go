package asm

import (
	"fmt"

	"multiscalar/internal/isa"
)

// expansionSize returns how many instructions a mnemonic expands to, so
// pass 1 can lay out addresses before symbols are resolved.
func expansionSize(mn string, ops [][]token) (int, error) {
	switch mn {
	case "blt", "bge", "bgt", "ble":
		return 2, nil
	case "mul", "div", "rem":
		// No immediate encoding: a constant third operand expands through
		// $at (li $at, imm; op rd, rs, $at).
		if len(ops) == 3 && !(len(ops[2]) == 1 && ops[2][0].kind == tokReg) {
			return 2, nil
		}
		return 1, nil
	case "release":
		if len(ops) == 0 {
			return 0, fmt.Errorf("release wants at least one register")
		}
		return len(ops), nil
	default:
		if _, ok := isa.OpByName(mn); ok {
			return 1, nil
		}
		if _, ok := pseudoOps[mn]; ok {
			return 1, nil
		}
		return 0, fmt.Errorf("unknown mnemonic %q", mn)
	}
}

// pseudoOps are the single-instruction pseudo mnemonics.
var pseudoOps = map[string]bool{
	"li": true, "la": true, "move": true, "b": true,
	"beqz": true, "bnez": true, "neg": true, "not": true,
	"ret": true,
}

// immForm maps a register-form integer op to its immediate form when the
// third operand is an expression rather than a register.
var immForm = map[isa.Op]isa.Op{
	isa.OpAdd: isa.OpAddi, isa.OpAnd: isa.OpAndi, isa.OpOr: isa.OpOri,
	isa.OpXor: isa.OpXori, isa.OpSlt: isa.OpSlti, isa.OpSltu: isa.OpSltiu,
	isa.OpSllv: isa.OpSll, isa.OpSrlv: isa.OpSrl, isa.OpSrav: isa.OpSra,
}

func (a *assembler) reg(line int, op []token) (isa.Reg, error) {
	if len(op) != 1 || op[0].kind != tokReg {
		return 0, a.errf(line, "expected register operand")
	}
	r, err := isa.ParseReg(op[0].text)
	if err != nil {
		return 0, a.errf(line, "%v", err)
	}
	return r, nil
}

func (a *assembler) isReg(op []token) bool {
	return len(op) == 1 && op[0].kind == tokReg
}

func (a *assembler) imm(line int, op []token) (int32, error) {
	v, err := a.evalExpr(line, op)
	if err != nil {
		return 0, err
	}
	if v > 0x7fffffff || v < -0x80000000 {
		return 0, a.errf(line, "immediate %d out of 32-bit range", v)
	}
	return int32(v), nil
}

func (a *assembler) target(line int, op []token) (uint32, error) {
	v, err := a.evalExpr(line, op)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 0xffffffff {
		return 0, a.errf(line, "target %d out of range", v)
	}
	return uint32(v), nil
}

// mem parses "expr(reg)" or a bare "expr" (absolute address, base $zero).
func (a *assembler) mem(line int, op []token) (base isa.Reg, off int32, err error) {
	// Find a top-level '(' ... ')' suffix.
	openIdx := -1
	for i, t := range op {
		if t.kind == tokPunct && t.text == "(" {
			openIdx = i
			break
		}
	}
	if openIdx == -1 {
		v, err := a.imm(line, op)
		return isa.RegZero, v, err
	}
	last := op[len(op)-1]
	if last.kind != tokPunct || last.text != ")" {
		return 0, 0, a.errf(line, "bad memory operand")
	}
	inner := op[openIdx+1 : len(op)-1]
	if len(inner) != 1 || inner[0].kind != tokReg {
		return 0, 0, a.errf(line, "memory operand wants (register)")
	}
	base, err = isa.ParseReg(inner[0].text)
	if err != nil {
		return 0, 0, a.errf(line, "%v", err)
	}
	if openIdx == 0 {
		return base, 0, nil
	}
	off, err = a.imm(line, op[:openIdx])
	return base, off, err
}

func (a *assembler) wantOps(pi *pendingInstr, n int) error {
	if len(pi.operands) != n {
		return a.errf(pi.line, "%s wants %d operands, got %d", pi.mnemonic, n, len(pi.operands))
	}
	return nil
}

// emit expands one pending instruction into its final form(s).
func (a *assembler) emit(pi *pendingInstr) ([]isa.Instr, error) {
	line := pi.line
	out, err := a.emitBody(pi)
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, a.errf(line, "internal: empty expansion")
	}
	lastIdx := len(out) - 1
	if pi.fwd {
		if out[lastIdx].Dest() == isa.RegZero {
			return nil, a.errf(line, "!f on instruction with no destination register")
		}
		out[lastIdx].Fwd = true
	}
	if pi.stop != isa.StopNone {
		if (pi.stop == isa.StopTaken || pi.stop == isa.StopNotTaken) && !out[lastIdx].Op.IsBranch() {
			return nil, a.errf(line, "%s only valid on conditional branches", pi.stop)
		}
		out[lastIdx].Stop = pi.stop
	}
	return out, nil
}

func (a *assembler) emitBody(pi *pendingInstr) ([]isa.Instr, error) {
	line := pi.line
	mn := pi.mnemonic
	ops := pi.operands

	// Pseudo instructions first.
	switch mn {
	case "nop":
		if err := a.wantOps(pi, 0); err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.OpNop}}, nil
	case "li", "la":
		if err := a.wantOps(pi, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		imm, err := a.imm(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.OpOri, Rd: rd, Rs: isa.RegZero, Imm: imm}}, nil
	case "move":
		if err := a.wantOps(pi, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.OpOr, Rd: rd, Rs: rs, Rt: isa.RegZero}}, nil
	case "b":
		if err := a.wantOps(pi, 1); err != nil {
			return nil, err
		}
		t, err := a.target(line, ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.OpJ, Target: t}}, nil
	case "beqz", "bnez":
		if err := a.wantOps(pi, 2); err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		t, err := a.target(line, ops[1])
		if err != nil {
			return nil, err
		}
		op := isa.OpBeq
		if mn == "bnez" {
			op = isa.OpBne
		}
		return []isa.Instr{{Op: op, Rs: rs, Rt: isa.RegZero, Target: t}}, nil
	case "blt", "bge", "bgt", "ble":
		if err := a.wantOps(pi, 3); err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rt, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		t, err := a.target(line, ops[2])
		if err != nil {
			return nil, err
		}
		x, y := rs, rt
		if mn == "bgt" || mn == "ble" {
			x, y = rt, rs
		}
		br := isa.OpBne
		if mn == "bge" || mn == "ble" {
			br = isa.OpBeq
		}
		return []isa.Instr{
			{Op: isa.OpSlt, Rd: isa.RegAT, Rs: x, Rt: y},
			{Op: br, Rs: isa.RegAT, Rt: isa.RegZero, Target: t},
		}, nil
	case "neg":
		if err := a.wantOps(pi, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.OpSub, Rd: rd, Rs: isa.RegZero, Rt: rs}}, nil
	case "not":
		if err := a.wantOps(pi, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.OpNor, Rd: rd, Rs: rs, Rt: isa.RegZero}}, nil
	case "ret":
		if err := a.wantOps(pi, 0); err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.OpJr, Rs: isa.RegRA}}, nil
	case "release":
		out := make([]isa.Instr, 0, len(ops))
		for _, op := range ops {
			r, err := a.reg(line, op)
			if err != nil {
				return nil, err
			}
			out = append(out, isa.Instr{Op: isa.OpRelease, Rs: r})
		}
		return out, nil
	}

	op, ok := isa.OpByName(mn)
	if !ok {
		return nil, a.errf(line, "unknown mnemonic %q", mn)
	}
	in := isa.Instr{Op: op}

	switch op {
	case isa.OpNop, isa.OpSyscall:
		if err := a.wantOps(pi, 0); err != nil {
			return nil, err
		}
	case isa.OpJ:
		if err := a.wantOps(pi, 1); err != nil {
			return nil, err
		}
		t, err := a.target(line, ops[0])
		if err != nil {
			return nil, err
		}
		in.Target = t
	case isa.OpJal:
		if err := a.wantOps(pi, 1); err != nil {
			return nil, err
		}
		t, err := a.target(line, ops[0])
		if err != nil {
			return nil, err
		}
		in.Target = t
		in.Rd = isa.RegRA
	case isa.OpJr, isa.OpRelease:
		if err := a.wantOps(pi, 1); err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		in.Rs = rs
	case isa.OpJalr:
		switch len(ops) {
		case 1:
			rs, err := a.reg(line, ops[0])
			if err != nil {
				return nil, err
			}
			in.Rd, in.Rs = isa.RegRA, rs
		case 2:
			rd, err := a.reg(line, ops[0])
			if err != nil {
				return nil, err
			}
			rs, err := a.reg(line, ops[1])
			if err != nil {
				return nil, err
			}
			in.Rd, in.Rs = rd, rs
		default:
			return nil, a.errf(line, "jalr wants 1 or 2 operands")
		}
	case isa.OpBeq, isa.OpBne:
		if err := a.wantOps(pi, 3); err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rt, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		t, err := a.target(line, ops[2])
		if err != nil {
			return nil, err
		}
		in.Rs, in.Rt, in.Target = rs, rt, t
	case isa.OpBlez, isa.OpBgtz, isa.OpBltz, isa.OpBgez:
		if err := a.wantOps(pi, 2); err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		t, err := a.target(line, ops[1])
		if err != nil {
			return nil, err
		}
		in.Rs, in.Target = rs, t
	case isa.OpBc1t, isa.OpBc1f:
		if err := a.wantOps(pi, 1); err != nil {
			return nil, err
		}
		t, err := a.target(line, ops[0])
		if err != nil {
			return nil, err
		}
		in.Target = t
	case isa.OpLui:
		if err := a.wantOps(pi, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		imm, err := a.imm(line, ops[1])
		if err != nil {
			return nil, err
		}
		in.Rd, in.Imm = rd, imm
	case isa.OpCEqD, isa.OpCLtD, isa.OpCLeD:
		if err := a.wantOps(pi, 2); err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rt, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		in.Rs, in.Rt = rs, rt
	case isa.OpMovD, isa.OpNegD, isa.OpAbsD, isa.OpSqrtD,
		isa.OpCvtDW, isa.OpCvtWD, isa.OpCvtSD, isa.OpCvtDS,
		isa.OpMtc1, isa.OpMfc1:
		if err := a.wantOps(pi, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		in.Rd, in.Rs = rd, rs
	default:
		switch {
		case op.IsLoad():
			if err := a.wantOps(pi, 2); err != nil {
				return nil, err
			}
			rd, err := a.reg(line, ops[0])
			if err != nil {
				return nil, err
			}
			base, off, err := a.mem(line, ops[1])
			if err != nil {
				return nil, err
			}
			in.Rd, in.Rs, in.Imm = rd, base, off
		case op.IsStore():
			if err := a.wantOps(pi, 2); err != nil {
				return nil, err
			}
			rt, err := a.reg(line, ops[0])
			if err != nil {
				return nil, err
			}
			base, off, err := a.mem(line, ops[1])
			if err != nil {
				return nil, err
			}
			in.Rt, in.Rs, in.Imm = rt, base, off
		case op.HasImm():
			// Explicit immediate forms: addi rd, rs, imm.
			if err := a.wantOps(pi, 3); err != nil {
				return nil, err
			}
			rd, err := a.reg(line, ops[0])
			if err != nil {
				return nil, err
			}
			rs, err := a.reg(line, ops[1])
			if err != nil {
				return nil, err
			}
			imm, err := a.imm(line, ops[2])
			if err != nil {
				return nil, err
			}
			in.Rd, in.Rs, in.Imm = rd, rs, imm
		default:
			// Register 3-operand forms; the third operand may be an
			// immediate if an immediate form exists (sub accepts an
			// immediate via addi of the negation).
			if err := a.wantOps(pi, 3); err != nil {
				return nil, err
			}
			rd, err := a.reg(line, ops[0])
			if err != nil {
				return nil, err
			}
			rs, err := a.reg(line, ops[1])
			if err != nil {
				return nil, err
			}
			in.Rd, in.Rs = rd, rs
			if a.isReg(ops[2]) {
				rt, err := a.reg(line, ops[2])
				if err != nil {
					return nil, err
				}
				in.Rt = rt
			} else {
				imm, err := a.imm(line, ops[2])
				if err != nil {
					return nil, err
				}
				switch {
				case op == isa.OpSub:
					in.Op, in.Imm = isa.OpAddi, -imm
				case op == isa.OpMul || op == isa.OpDiv || op == isa.OpRem:
					// Expand through the assembler temporary.
					in.Rt = isa.RegAT
					return []isa.Instr{
						{Op: isa.OpOri, Rd: isa.RegAT, Rs: isa.RegZero, Imm: imm},
						in,
					}, nil
				default:
					if iop, ok := immForm[op]; ok {
						in.Op, in.Imm = iop, imm
					} else {
						return nil, a.errf(line, "%s has no immediate form", mn)
					}
				}
			}
		}
	}
	return []isa.Instr{in}, nil
}
