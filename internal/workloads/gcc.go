package workloads

import "strings"

// gcc is the irregular-code workload (paper §5.3: "execution time is
// distributed uniformly across a great deal of code... squashes (both
// prediction and memory order) result in near-sequential execution of the
// important tasks. Accordingly, the overheads in multiscalar execution
// result in a slow down in some cases."). The kernel is a synthetic IR
// pass: small per-node tasks dispatch on a data-dependent opcode; some
// nodes bump shared symbol-table counters (memory-order violations), and
// some divert through a fixup task, making inter-task control hard to
// predict (the paper's gcc task prediction is only ~81%).
func init() {
	register(&Workload{
		Name:         "gcc",
		Description:  "irregular IR-pass over per-node tasks with shared tables",
		DefaultScale: 400, // IR nodes
		TestScale:    60,
		Source:       gccSource,
		Paper: PaperRow{
			ScalarM: 66.48, MultiM: 75.31, PctIncrease: 13.3,
			InOrder1: PaperPerf{ScalarIPC: 0.81, Speedup4: 1.02, Speedup8: 1.08, Pred4: 81.2, Pred8: 80.9},
			InOrder2: PaperPerf{ScalarIPC: 1.04, Speedup4: 0.92, Speedup8: 0.98, Pred4: 81.2, Pred8: 80.9},
			OOO1:     PaperPerf{ScalarIPC: 0.83, Speedup4: 1.06, Speedup8: 1.13, Pred4: 81.1, Pred8: 80.6},
			OOO2:     PaperPerf{ScalarIPC: 1.15, Speedup4: 0.91, Speedup8: 0.95, Pred4: 81.1, Pred8: 80.6},
		},
	})
}

// Node layout: opcode, a, b, sym — 4 words.
func gccSource(scale int) string {
	nnodes := scale
	r := newRNG(0x9cc)
	var words []int
	for i := 0; i < nnodes; i++ {
		d := r.intn(20)
		op := 0
		switch {
		case d < 6:
			op = 0
		case d < 12:
			op = 1
		case d < 15:
			op = 2
		default:
			op = 3
		}
		words = append(words, op, r.intn(100), 1+r.intn(50), r.intn(4))
	}
	var sb strings.Builder
	sb.WriteString("\t.data\nnodes:\n")
	sb.WriteString(wordLines(words))
	sb.WriteString("symtab:\t.space 64\n") // 8 shared counters
	sb.WriteString("outlist:\t.word 0\n")  // emitted-node count (shared)
	sb.WriteString(`
	.text
main:
	li   $s0, 0 !f           ; node index
	li   $s1, 0 !f           ; checksum
`)
	sb.WriteString("\tli   $s5, " + itoa(nnodes) + " !f\n")
	sb.WriteString(`	j    NODE !s

NODE:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5 !f
	sll  $t0, $t9, 4         ; node base
	lw   $t1, nodes($t0)     ; opcode
	lw   $t2, nodes+4($t0)   ; a
	lw   $t3, nodes+8($t0)   ; b
	; dispatch
	beqz $t1, OPFOLD
	addi $t4, $t1, -1
	beqz $t4, OPSYM
	addi $t4, $t1, -2
	beqz $t4, OPCHAIN
	; opcode 3: emit -> leave through the fixup task
	lw   $t5, outlist
	addi $t5, $t5, 1
	sw   $t5, outlist
	.msonly release $s1
	j    FIXUP !s
OPFOLD:
	mul  $t4, $t2, $t3
	add  $s1, $s1, $t4 !f
	j    NEXT
OPSYM:
	lw   $t4, nodes+12($t0)  ; sym
	sll  $t4, $t4, 3
	lw   $t5, symtab($t4)    ; shared counter: violation-prone
	add  $t5, $t5, $t2
	sw   $t5, symtab($t4)
	.msonly release $s1
	j    NEXT
OPCHAIN:
	; data-dependent internal branching
	andi $t4, $t2, 3
CHAINLOOP:
	beqz $t4, CHAINOUT
	add  $t3, $t3, $t2
	srl  $t2, $t2, 1
	addi $t4, $t4, -1
	j    CHAINLOOP
CHAINOUT:
	add  $s1, $s1, $t3 !f
NEXT:
	.msonly beqz $at, DONE !st
	.msonly j    NODE !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, NODE
	j    DONE !s

FIXUP:
	; rescan bookkeeping, then resume the node loop
	lw   $t6, outlist
	add  $s1, $s1, $t6
	.msonly release $s1
	.msonly beqz $at, DONE !st
	.msonly j    NODE !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, NODE
	j    DONE !s

DONE:
	lw   $t0, outlist
	add  $a0, $s1, $t0
` + printInt + exitSeq + `
	.task main targets=NODE create=$s0,$s1,$s5
	.task NODE targets=NODE,FIXUP,DONE create=$s0,$s1,$at
	.task FIXUP targets=NODE,DONE create=$s1
	.task DONE
`)
	return sb.String()
}
