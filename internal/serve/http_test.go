package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) *T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return &v
}

// TestBatchSweepRepeatFullyCached is the acceptance path end to end: a
// batch sweep submitted twice over HTTP. The second submission must
// report every job cached — zero new simulations — with result payloads
// byte-identical to the first run.
func TestBatchSweepRepeatFullyCached(t *testing.T) {
	eng := NewLocal(Options{CacheEntries: 64})
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()

	req := BatchRequest{
		Client: "itest",
		Sweep: &BatchSweep{
			Base:  WireJob{Workload: "example", Scale: -1, Verify: true},
			Units: []int{1, 2, 4},
		},
	}
	marshalResults := func(b *BatchResponse) []string {
		out := make([]string, len(b.Results))
		for i, jr := range b.Results {
			if jr.Error != "" {
				t.Fatalf("job %d failed: %s", i, jr.Error)
			}
			data, err := json.Marshal(jr.Result.withCached(false))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(data)
		}
		return out
	}

	resp1 := decode[BatchResponse](t, postJSON(t, srv, "/v1/batch", req))
	if resp1.Count != 3 || resp1.Errors != 0 || resp1.Executed != 3 || resp1.Cached != 0 {
		t.Fatalf("first submission: %+v", resp1)
	}
	first := marshalResults(resp1)

	executedBefore := eng.Metrics().Executed
	resp2 := decode[BatchResponse](t, postJSON(t, srv, "/v1/batch", req))
	if resp2.Count != 3 || resp2.Cached != 3 || resp2.Executed != 0 || resp2.Errors != 0 {
		t.Fatalf("repeat submission not fully cached: %+v", resp2)
	}
	if got := eng.Metrics().Executed; got != executedBefore {
		t.Fatalf("repeat submission ran %d new simulations", got-executedBefore)
	}
	for i, payload := range marshalResults(resp2) {
		if payload != first[i] {
			t.Fatalf("job %d: repeat payload differs:\n%s\nvs\n%s", i, payload, first[i])
		}
	}

	// The scalar baseline point really took the scalar path and the
	// multiscalar points sped up over it.
	var r1, r4 struct{ Cycles uint64 }
	pick := func(i int, into *struct{ Cycles uint64 }) {
		var w struct {
			Sim struct{ Cycles uint64 } `json:"sim"`
		}
		if err := json.Unmarshal([]byte(first[i]), &w); err != nil {
			t.Fatal(err)
		}
		into.Cycles = w.Sim.Cycles
	}
	pick(0, &r1)
	pick(2, &r4)
	if r1.Cycles == 0 || r4.Cycles == 0 || r4.Cycles >= r1.Cycles {
		t.Fatalf("sweep results implausible: scalar=%d cycles, 4 units=%d cycles", r1.Cycles, r4.Cycles)
	}
}

func TestSingleJobAndMetricsEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewLocal(Options{CacheEntries: 8})))
	defer srv.Close()

	req := SubmitRequest{
		Client: "solo",
		Job:    WireJob{Workload: "example", Scale: -1, Preset: &WirePreset{Units: 2}},
	}
	res := decode[Result](t, postJSON(t, srv, "/v1/jobs", req))
	if res.Cached || res.Sim == nil || res.Sim.Cycles == 0 || res.Key == "" {
		t.Fatalf("job response: %+v", res)
	}
	res2 := decode[Result](t, postJSON(t, srv, "/v1/jobs", req))
	if !res2.Cached || res2.Key != res.Key {
		t.Fatalf("resubmission: %+v", res2)
	}

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[Metrics](t, mresp)
	if m.Jobs != 2 || m.Executed != 1 || m.CacheHits != 1 {
		t.Fatalf("metrics: %+v", m)
	}

	h, err := http.Get(srv.URL + "/healthz")
	if err != nil || h.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", h.StatusCode, err)
	}
	h.Body.Close()
}

func TestBadRequestsRejected(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewLocal(Options{CacheEntries: 8})))
	defer srv.Close()

	cases := []struct {
		body string
		want string
	}{
		{`{"job":{"preset":{"units":2}}}`, "exactly one of"},
		{`{"job":{"workload":"example","op":"explode"}}`, "unknown op"},
		{`{"job":{"workload":"nope","preset":{"units":2}}}`, "unknown workload"},
		{`{"job":{"workload":"example"}}`, "config or a preset"},
		{`{}`, "empty batch"},
	}
	for i, c := range cases {
		path := "/v1/jobs"
		if i == len(cases)-1 {
			path = "/v1/batch"
		}
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("case %d: accepted %q", i, c.body)
		}
		if !strings.Contains(e.Error, c.want) {
			t.Fatalf("case %d: error %q does not mention %q", i, e.Error, c.want)
		}
	}
}
