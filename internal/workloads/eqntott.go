package workloads

import "strings"

// eqntott reduces to cmppt, the comparison routine that dominates the
// SPEC92 program (paper §5.3: "most (85%) of the instructions are in the
// cmppt function, dominated by a loop; the compiler encompasses the
// entire loop body into a task, allowing multiple iterations to execute
// in parallel"). A task compares one pair of PTERM vectors word by word
// until they differ, and folds the three-way outcome into an order
// accumulator. Pairs share prefixes of random length, so the inner loop
// has data-dependent trip counts and exits.
func init() {
	register(&Workload{
		Name:         "eqntott",
		Description:  "cmppt PTERM-vector comparison, one pair per task",
		DefaultScale: 400, // comparisons
		TestScale:    40,
		Source:       eqntottSource,
		Paper: PaperRow{
			ScalarM: 1077.50, MultiM: 1237.73, PctIncrease: 14.9,
			InOrder1: PaperPerf{ScalarIPC: 0.83, Speedup4: 2.05, Speedup8: 2.91, Pred4: 94.8, Pred8: 94.6},
			InOrder2: PaperPerf{ScalarIPC: 1.10, Speedup4: 1.82, Speedup8: 2.58, Pred4: 94.8, Pred8: 94.6},
			OOO1:     PaperPerf{ScalarIPC: 0.84, Speedup4: 2.23, Speedup8: 3.35, Pred4: 94.8, Pred8: 94.6},
			OOO2:     PaperPerf{ScalarIPC: 1.21, Speedup4: 1.79, Speedup8: 2.64, Pred4: 94.8, Pred8: 94.5},
		},
	})
}

const ptermWords = 8

func eqntottSource(scale int) string {
	npairs := scale
	r := newRNG(0xe41077)
	// PTERM pool: npairs*2 vectors of ptermWords words; pair i compares
	// vectors 2i and 2i+1. They agree on a random-length prefix.
	var words []int
	for p := 0; p < npairs; p++ {
		a := make([]int, ptermWords)
		for i := range a {
			a[i] = int(r.next() & 0x3fffffff)
		}
		b := make([]int, ptermWords)
		copy(b, a)
		pre := r.intn(ptermWords + 1)
		for i := pre; i < ptermWords; i++ {
			b[i] = int(r.next() & 0x3fffffff)
		}
		words = append(words, a...)
		words = append(words, b...)
	}
	var sb strings.Builder
	sb.WriteString("\t.data\npterms:\n")
	sb.WriteString(wordLines(words))
	sb.WriteString(`
	.text
main:
	li   $s0, 0 !f           ; pair index
	li   $s1, 0 !f           ; order accumulator
`)
	sb.WriteString("\tli   $s5, " + itoa(npairs) + " !f\n")
	sb.WriteString(`	j    PAIR !s

PAIR:
	move $t9, $s0
	.msonly addi $s0, $s0, 1 !f
	.msonly slt  $at, $s0, $s5   ; early loop-exit test
	sll  $t0, $t9, 6             ; pair base: 2 vectors x 8 words x 4 bytes
	addi $t1, $t0, 32            ; second vector
	li   $t2, 8                  ; words left
CMPW:
	lw   $t3, pterms($t0)
	lw   $t4, pterms($t1)
	bne  $t3, $t4, DIFFER
	addi $t0, $t0, 4
	addi $t1, $t1, 4
	addi $t2, $t2, -1
	bnez $t2, CMPW
	j    FOLD                    ; equal vectors
DIFFER:
	slt  $t5, $t3, $t4
	sll  $t5, $t5, 1
	addi $t5, $t5, -1            ; -1 if a>b, +1 if a<b
	add  $s1, $s1, $t5
FOLD:
	.msonly release $s1          ; may not have been written (equal case)
	.msonly bnez $at, PAIR !s
	.sconly addi $s0, $s0, 1
	.sconly bne  $s0, $s5, PAIR
DONE:
	move $a0, $s1
` + printInt + exitSeq + `
	.task main targets=PAIR create=$s0,$s1,$s5
	.task PAIR targets=PAIR,DONE create=$s0,$s1
	.task DONE
`)
	return sb.String()
}
