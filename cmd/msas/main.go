// msas assembles a multiscalar assembly file and prints a listing: every
// instruction with its address and annotation bits, the task descriptors
// with create masks and targets, and the data segment size. With -mode
// scalar it shows the scalar build instead (annotations stripped). With
// -encode it appends each instruction's binary encoding.
//
// Multiscalar builds are checked against the annotation contract
// (docs/lint.md): hard violations reject the build with one line per
// finding, warnings are printed to stderr alongside the listing. Disable
// with -lint off. With -O the annotation optimizer (msannotate) rewrites
// the source first: minimal create masks, forward bits at last updates,
// releases on flush-only paths, verified against the functional oracle.
package main

import (
	"flag"
	"fmt"
	"os"

	"multiscalar"
	"multiscalar/internal/asm"
	"multiscalar/internal/isa"
)

func main() {
	var (
		modeFlag = flag.String("mode", "multiscalar", "build mode: scalar or multiscalar")
		encode   = flag.Bool("encode", false, "also print the binary encoding of each instruction")
		out      = flag.String("o", "", "write a binary container (.msb) instead of a listing")
		lintFlag = flag.String("lint", "on", "annotation-contract check: on (reject errors, print warnings) or off")
		optimize = flag.Bool("O", false, "run the annotation optimizer before building (multiscalar mode, oracle-verified; see msannotate)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: msas [-mode scalar|multiscalar] [-lint on|off] [-encode] file.s")
		os.Exit(2)
	}
	if *lintFlag != "on" && *lintFlag != "off" {
		fmt.Fprintln(os.Stderr, "msas: -lint must be on or off")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *optimize {
		if *modeFlag == "scalar" {
			fatal(fmt.Errorf("-O applies only to multiscalar builds (scalar builds carry no annotations)"))
		}
		newSrc, plan, err := multiscalar.OptimizeSource(string(src))
		if err != nil {
			fatal(err)
		}
		if plan.Changed() {
			fmt.Fprint(os.Stderr, plan.String())
		}
		src = []byte(newSrc)
	}
	opts := []multiscalar.AssembleOption{}
	if *modeFlag != "scalar" {
		opts = append(opts, multiscalar.WithMode(multiscalar.ModeMultiscalar))
	}
	if *lintFlag == "off" {
		opts = append(opts, multiscalar.WithoutLint())
	}
	res, err := multiscalar.Assemble(string(src), opts...)
	if err != nil {
		// A lint rejection still carries the full report; show every
		// finding, not just the folded error.
		if res != nil && res.Lint != nil {
			for _, d := range res.Lint.Diags {
				fmt.Fprintf(os.Stderr, "msas: %s: %s\n", flag.Arg(0), d.String())
			}
			os.Exit(1)
		}
		fatal(err)
	}
	p := res.Prog
	if res.Lint != nil {
		for _, d := range res.Lint.Warnings() {
			fmt.Fprintf(os.Stderr, "msas: %s: warning: %s\n", flag.Arg(0), d.String())
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := isa.WriteProgram(f, p); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d instructions, %d tasks\n", *out, len(p.Text), len(p.Tasks))
		return
	}
	fmt.Print(asm.Listing(p))
	if *encode {
		fmt.Printf("\n; binary encoding (%d bytes/instruction)\n", isa.EncodedSize)
		for i := range p.Text {
			addr := isa.TextBase + uint32(i)*isa.InstrSize
			fmt.Printf("  0x%04x  % x\n", addr, p.Text[i].Encode(nil))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msas:", err)
	os.Exit(1)
}
